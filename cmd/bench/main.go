// Command bench is the repo's continuous-benchmarking driver. It runs the
// existing `go test -bench` suite through internal/benchkit, records
// schema-versioned BENCH_<runid>.json files with environment metadata,
// diffs two records into a significance-annotated delta table, and
// enforces regression budgets for CI — optionally capturing CPU/heap
// profiles (with `go tool pprof -top` summaries) for every benchmark that
// trips the gate, so a flagged regression arrives with its profile.
//
// Record a run (repo root; writes BENCH_<timestamp>-<commit>.json):
//
//	bench -record
//	bench -record -bench 'AllPairs|Netsim' -count 10 -benchtime 100ms -out perf/
//
// Diff two records (old first):
//
//	bench -diff BENCH_a.json BENCH_b.json
//
// Gate a fresh run against a committed baseline — exits 1 on a significant
// over-budget regression, 2 on usage/infrastructure errors:
//
//	bench -baseline BENCH_baseline.json \
//	      -gate 'BuildHSN3Q4|Routing|Netsim:+10%' \
//	      -cpuprofile-dir prof/cpu -memprofile-dir prof/mem
//
// or gate one record against another without re-running anything:
//
//	bench -gate 'AllPairs.*:+10%' BENCH_old.json BENCH_new.json
//
// Gate spec grammar: comma-separated `pattern:+N%` (metric ns/op) or
// `pattern:metric:+N%` entries; the pattern is an unanchored Go regexp
// against the benchmark name without its "Benchmark" prefix, exactly like
// `go test -bench`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchkit"
)

func main() {
	var (
		record   = flag.Bool("record", false, "run the benchmark suite and write a BENCH_<runid>.json record")
		diff     = flag.Bool("diff", false, "compare two records: bench -diff old.json new.json")
		gateSpec = flag.String("gate", "", "regression budget spec, e.g. 'AllPairs.*:+10%,Netsim:allocs/op:+0%'; exits 1 when a budget is broken")
		baseline = flag.String("baseline", "", "with -gate: record a fresh run of the gated benchmarks and compare against this BENCH_*.json")

		benchRe   = flag.String("bench", ".", "benchmark regex, as in go test -bench")
		pkgs      = flag.String("pkg", "./...", "comma-separated package patterns to benchmark")
		count     = flag.Int("count", 5, "repetitions per benchmark")
		benchtime = flag.String("benchtime", "", "per-repetition -benchtime (e.g. 100ms, 10x); empty = go default")
		timeout   = flag.String("timeout", "20m", "go test -timeout per invocation")
		out       = flag.String("out", ".", "output path for -record: a directory (conventional name) or a file")
		verbose   = flag.Bool("v", false, "stream raw go test output to stderr")

		cpuDir   = flag.String("cpuprofile-dir", "", "capture per-benchmark CPU profiles (+ top-functions summaries) into this directory")
		memDir   = flag.String("memprofile-dir", "", "capture per-benchmark heap profiles (+ alloc_space summaries) into this directory")
		profTime = flag.String("profile-benchtime", "2s", "-benchtime for profile-capture reruns (profiles want more samples than timing passes)")
		profAll  = flag.Bool("profile-all", false, "with -record: profile every recorded benchmark, not just gate violations")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*record, *diff, *gateSpec != ""} {
		if on {
			modes++
		}
	}
	if modes == 0 || (*diff && *gateSpec != "") {
		fmt.Fprintln(os.Stderr, "bench: pick one mode: -record, -diff old.json new.json, or -gate 'spec' (with -baseline or two record files)")
		flag.Usage()
		os.Exit(2)
	}

	spec := benchkit.Spec{
		Packages:  splitList(*pkgs),
		Bench:     *benchRe,
		Benchtime: *benchtime,
		Count:     *count,
		Timeout:   *timeout,
	}
	if *verbose {
		spec.Verbose = os.Stderr
	}
	prof := benchkit.ProfileSpec{
		CPUDir:    *cpuDir,
		MemDir:    *memDir,
		Benchtime: *profTime,
		Timeout:   *timeout,
		Verbose:   spec.Verbose,
	}

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fatalf("bench -diff wants exactly two record files, got %d", flag.NArg())
		}
		oldRun, newRun := readRun(flag.Arg(0)), readRun(flag.Arg(1))
		warnEnvMismatch(oldRun, newRun)
		benchkit.FormatTable(os.Stdout, benchkit.Diff(oldRun, newRun, nil))

	case *gateSpec != "":
		budgets, err := benchkit.ParseBudgets(*gateSpec)
		exitIf(err)
		var oldRun, newRun *benchkit.Run
		switch {
		case flag.NArg() == 2:
			oldRun, newRun = readRun(flag.Arg(0)), readRun(flag.Arg(1))
		case *baseline != "" && flag.NArg() == 0:
			oldRun = readRun(*baseline)
			fmt.Fprintf(os.Stderr, "bench: recording gated run (bench=%q count=%d benchtime=%q)...\n",
				*benchRe, *count, *benchtime)
			newRun, err = benchkit.Record(spec)
			exitIf(err)
			if path, werr := newRun.WriteFile(*out); werr == nil {
				fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
			}
		default:
			fatalf("bench -gate wants either -baseline <file> or two record files")
		}
		warnEnvMismatch(oldRun, newRun)
		deltas := benchkit.Diff(oldRun, newRun, nil)
		benchkit.FormatTable(os.Stdout, deltas)
		violations := benchkit.Gate(deltas, budgets)
		if len(violations) == 0 {
			fmt.Println("\ngate: PASS")
			return
		}
		fmt.Printf("\ngate: FAIL (%d violation(s))\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
		if prof.CPUDir != "" || prof.MemDir != "" {
			// Only meaningful when the regressed code is in this tree,
			// i.e. the new run was recorded live or matches HEAD.
			captureProfiles(newRun, benchkit.GatedNames(violations), prof)
		}
		os.Exit(1)

	case *record:
		run, err := benchkit.Record(spec)
		if run == nil {
			exitIf(err)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: warning: %v\n", err)
		}
		path, err := run.WriteFile(*out)
		exitIf(err)
		fmt.Printf("recorded %d benchmarks x %d reps -> %s\n", len(run.Results), *count, path)
		printRunSummary(run)
		if (prof.CPUDir != "" || prof.MemDir != "") && *profAll {
			names := make([]string, len(run.Results))
			for i := range run.Results {
				names[i] = run.Results[i].Name
			}
			captureProfiles(run, names, prof)
		}
	}
}

func printRunSummary(run *benchkit.Run) {
	nameW := len("benchmark")
	for _, r := range run.Results {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Printf("%-*s  %12s %12s %12s\n", nameW, "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range run.Results {
		fmt.Printf("%-*s  %12s %12s %12s\n", nameW, r.Name,
			medianCell(r, "ns/op"), medianCell(r, "B/op"), medianCell(r, "allocs/op"))
	}
}

func medianCell(r benchkit.Result, unit string) string {
	st, ok := r.Summary[unit]
	if !ok || st.N == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", st.Median)
}

func captureProfiles(run *benchkit.Run, names []string, prof benchkit.ProfileSpec) {
	fmt.Fprintf(os.Stderr, "bench: capturing profiles for %d benchmark(s)...\n", len(names))
	profiles, err := benchkit.CaptureProfiles(run, names, prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: profile capture: %v\n", err)
	}
	for _, p := range profiles {
		line := fmt.Sprintf("  %s %s -> %s", p.Bench, p.Kind, p.Path)
		if p.TopPath != "" {
			line += " (top: " + p.TopPath + ")"
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func warnEnvMismatch(oldRun, newRun *benchkit.Run) {
	for _, d := range benchkit.EnvMismatch(oldRun.Env, newRun.Env) {
		fmt.Fprintf(os.Stderr, "bench: warning: env mismatch, comparison may be unfair — %s\n", d)
	}
}

func readRun(path string) *benchkit.Run {
	run, err := benchkit.ReadFile(path)
	exitIf(err)
	return run
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
}
