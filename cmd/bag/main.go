// Command bag solves ball-arrangement games (Section 2 of the paper): given
// a start configuration, a target configuration, and a set of permissible
// moves in cycle notation, it finds a shortest move sequence — which is
// exactly shortest-path routing in the corresponding IP graph.
//
// Usage:
//
//	bag -start 123123 -target 321123 -moves "(1 2);(1 3);(1 4)(2 5)(3 6)"
//
// Moves are separated by semicolons; each move is a permutation of positions
// in 1-based cycle notation. Configurations are digit strings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/symbols"
)

func main() {
	var (
		start  = flag.String("start", "", "start configuration (digits)")
		target = flag.String("target", "", "target configuration (digits)")
		moves  = flag.String("moves", "", "semicolon-separated moves in cycle notation")
		limit  = flag.Int("limit", 1<<22, "state-space exploration limit")
	)
	flag.Parse()
	if *start == "" || *target == "" || *moves == "" {
		flag.Usage()
		os.Exit(2)
	}
	s, err := parseConfig(*start)
	exitIf(err)
	tgt, err := parseConfig(*target)
	exitIf(err)
	var gens []perm.Perm
	var names []string
	for _, spec := range strings.Split(*moves, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		p, err := perm.ParseCycles(spec, len(s))
		exitIf(err)
		gens = append(gens, p)
		names = append(names, spec)
	}
	ip := core.IPGraph{
		Name:     "bag",
		Seed:     s,
		Gens:     gens,
		GenNames: names,
	}
	// Bidirectional search over labels: optimal and far cheaper than
	// enumerating the full state space.
	solution, err := ip.ShortestPath(s, tgt, *limit)
	exitIf(err)
	states, err := ip.ApplyMoves(s, solution)
	exitIf(err)
	fmt.Printf("solved in %d moves\n", len(solution))
	for i, mv := range solution {
		fmt.Printf("%3d. apply %-20s -> %s\n", i+1, names[mv], states[i+1])
	}
}

func parseConfig(s string) (symbols.Label, error) {
	lab := make(symbols.Label, 0, len(s))
	for _, r := range s {
		if r < '0' || r > '9' {
			return nil, fmt.Errorf("bag: configuration must be digits, got %q", s)
		}
		lab = append(lab, byte(r-'0'))
	}
	if len(lab) == 0 {
		return nil, fmt.Errorf("bag: empty configuration")
	}
	return lab, nil
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bag: %v\n", err)
		os.Exit(1)
	}
}
