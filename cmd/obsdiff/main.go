// Command obsdiff compares two run manifests written by `simulate -manifest`
// (or `ipgen -manifest`) with the same statistical discipline cmd/bench
// applies to benchmark records: every numeric quantity in each manifest is
// flattened to a dotted metric name ("stats.AvgLatency", "percentiles.p99",
// "router.CacheHitRate", ...), the two sides' samples are rank-tested with
// Mann-Whitney, and -budget turns significant regressions into a non-zero
// exit for CI.
//
// Usage:
//
//	obsdiff old.json new.json
//	obsdiff -budget 'stats.AvgLatency:+10%,percentiles.p99:+15%' old.json new.json
//	obsdiff -metrics 'stats\.' -allow-env-mismatch old.json new.json
//
// A manifest recorded with `simulate -repeat n` carries one sample per
// repetition, giving the rank test real distributions; a single-run manifest
// contributes one sample per metric, and the gate falls back to comparing
// medians alone (marked '?' in the table).
//
// Manifests recording mismatched environments (different CPU, Go version,
// GOMAXPROCS — see benchkit.EnvMismatch) are refused, because cross-machine
// deltas are not attributable to the code; -allow-env-mismatch downgrades
// the refusal to a warning.
//
// Exit status: 0 when no budget is violated (or none given), 1 when a
// significant regression exceeds its budget, 2 on usage errors or an
// environment refusal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchkit"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.String("budget", "", "regression budgets over flattened metric names, comma-separated pattern:+N% entries (e.g. 'stats.AvgLatency:+10%,percentiles.p99:+15%'); exit 1 when a budgeted metric regresses past its limit")
	allowEnv := fs.Bool("allow-env-mismatch", false, "compare manifests from different environments anyway (the refusal becomes a warning)")
	metricsRe := fs.String("metrics", "", "only compare flattened metric names matching this regexp")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsdiff [flags] old-manifest.json new-manifest.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	oldM, err := obs.ReadManifestFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}
	newM, err := obs.ReadManifestFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}

	if oldM.Env != nil && newM.Env != nil {
		if mm := benchkit.EnvMismatch(*oldM.Env, *newM.Env); len(mm) > 0 {
			for _, d := range mm {
				fmt.Fprintf(stderr, "obsdiff: environment mismatch — %s\n", d)
			}
			if !*allowEnv {
				fmt.Fprintln(stderr, "obsdiff: refusing to compare runs from different environments (cross-machine deltas are not attributable to the code); pass -allow-env-mismatch to compare anyway")
				return 2
			}
			fmt.Fprintln(stderr, "obsdiff: comparing anyway (-allow-env-mismatch); deltas may reflect the machines, not the runs")
		}
	}

	var filter *regexp.Regexp
	if *metricsRe != "" {
		filter, err = regexp.Compile(*metricsRe)
		if err != nil {
			fmt.Fprintf(stderr, "obsdiff: bad -metrics regexp: %v\n", err)
			return 2
		}
	}

	oldRun := valueRun("old", oldM)
	newRun := valueRun("new", newM)
	fmt.Fprintf(stdout, "old: %s seed %d (%d samples)\n", oldM.Run, oldM.Seed, sampleCount(oldM))
	fmt.Fprintf(stdout, "new: %s seed %d (%d samples)\n", newM.Run, newM.Seed, sampleCount(newM))

	deltas := benchkit.Diff(oldRun, newRun, []string{benchkit.ValueUnit})
	if filter != nil {
		kept := deltas[:0]
		for _, d := range deltas {
			if filter.MatchString(d.Name) {
				kept = append(kept, d)
			}
		}
		deltas = kept
	}
	benchkit.FormatTable(stdout, deltas)

	if *budget == "" {
		return 0
	}
	budgets, err := benchkit.ParseBudgets(*budget)
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 2
	}
	// ParseBudgets defaults each entry's metric to cmd/bench's "ns/op"; here
	// every sample lives under the single ValueUnit axis (the metric name is
	// the "benchmark"), so the default is remapped rather than never matching.
	for i := range budgets {
		if budgets[i].Metric == "ns/op" {
			budgets[i].Metric = benchkit.ValueUnit
		}
	}
	violations := benchkit.Gate(deltas, budgets)
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "gate: ok (%d budget(s) satisfied)\n", len(budgets))
		return 0
	}
	for _, v := range violations {
		fmt.Fprintf(stdout, "gate: VIOLATION %s\n", v)
	}
	return 1
}

// samplesOf returns the distributions to rank-test: the recorded repeat
// samples when present, else a single observation flattened from the
// manifest's headline sections.
func samplesOf(m obs.Manifest) []map[string]float64 {
	if len(m.Samples) > 0 {
		return m.Samples
	}
	return []map[string]float64{m.Flatten()}
}

func sampleCount(m obs.Manifest) int { return len(samplesOf(m)) }

func valueRun(id string, m obs.Manifest) *benchkit.Run {
	var env benchkit.Env
	if m.Env != nil {
		env = *m.Env
	}
	return benchkit.ValueRun(id, env, samplesOf(m))
}
