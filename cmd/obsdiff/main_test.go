package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const fixtureBudget = "stats.AvgLatency:+10%,percentiles.p99:+15%"

func fixture(name string) string { return filepath.Join("testdata", name) }

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(fixture(name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestGoldenClean pins the full table output and the zero exit for two runs
// whose samples differ only by noise.
func TestGoldenClean(t *testing.T) {
	code, out, _ := runCLI(t, "-budget", fixtureBudget,
		fixture("manifest_base.json"), fixture("manifest_clean.json"))
	if code != 0 {
		t.Fatalf("clean comparison exited %d, want 0\noutput:\n%s", code, out)
	}
	if want := golden(t, "golden_clean.txt"); out != want {
		t.Errorf("output drifted from golden_clean.txt\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestGoldenRegressed pins the violation output and the non-zero exit for a
// seeded +32% AvgLatency regression.
func TestGoldenRegressed(t *testing.T) {
	code, out, _ := runCLI(t, "-budget", fixtureBudget,
		fixture("manifest_base.json"), fixture("manifest_regressed.json"))
	if code != 1 {
		t.Fatalf("regressed comparison exited %d, want 1\noutput:\n%s", code, out)
	}
	if want := golden(t, "golden_regressed.txt"); out != want {
		t.Errorf("output drifted from golden_regressed.txt\ngot:\n%s\nwant:\n%s", out, want)
	}
	if !strings.Contains(out, "VIOLATION stats.AvgLatency") {
		t.Errorf("violation line missing from output:\n%s", out)
	}
	// The regression must be flagged significant, not just over budget.
	if !strings.Contains(out, "+32.1%") || !strings.Contains(out, "0.002 *") {
		t.Errorf("expected significant +32.1%% delta (p=0.002 *) in table:\n%s", out)
	}
}

// TestNoBudgetAlwaysZero: without -budget the tool reports but never fails,
// even on the regressed pair.
func TestNoBudgetAlwaysZero(t *testing.T) {
	code, out, _ := runCLI(t, fixture("manifest_base.json"), fixture("manifest_regressed.json"))
	if code != 0 {
		t.Fatalf("budget-less comparison exited %d, want 0\noutput:\n%s", code, out)
	}
}

// TestEnvMismatchRefusal: manifests from different machines are refused with
// exit 2 unless -allow-env-mismatch downgrades the refusal to a warning.
func TestEnvMismatchRefusal(t *testing.T) {
	code, _, errOut := runCLI(t, fixture("manifest_base.json"), fixture("manifest_othermachine.json"))
	if code != 2 {
		t.Fatalf("cross-machine comparison exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "environment mismatch") || !strings.Contains(errOut, "cpu:") {
		t.Errorf("refusal should name the mismatched fields, got:\n%s", errOut)
	}

	code, out, errOut := runCLI(t, "-allow-env-mismatch", "-budget", fixtureBudget,
		fixture("manifest_base.json"), fixture("manifest_othermachine.json"))
	if code != 0 {
		t.Fatalf("-allow-env-mismatch comparison exited %d, want 0\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "comparing anyway") {
		t.Errorf("expected a downgrade warning on stderr, got:\n%s", errOut)
	}
	if !strings.Contains(out, "stats.AvgLatency") {
		t.Errorf("table should still be printed, got:\n%s", out)
	}
}

// TestMetricsFilter restricts the comparison to matching flattened names.
func TestMetricsFilter(t *testing.T) {
	code, out, _ := runCLI(t, "-metrics", `^percentiles\.`,
		fixture("manifest_base.json"), fixture("manifest_clean.json"))
	if code != 0 {
		t.Fatalf("filtered comparison exited %d, want 0", code)
	}
	if !strings.Contains(out, "percentiles.p99") {
		t.Errorf("filter dropped the matching metric:\n%s", out)
	}
	if strings.Contains(out, "stats.AvgLatency") || strings.Contains(out, "stats.Delivered") {
		t.Errorf("filter kept non-matching metrics:\n%s", out)
	}
}

// TestUsageErrors: wrong arity and unreadable files exit 2.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, fixture("manifest_base.json")); code != 2 {
		t.Errorf("one positional arg exited %d, want 2", code)
	}
	if code, _, _ := runCLI(t, fixture("manifest_base.json"), fixture("nope.json")); code != 2 {
		t.Errorf("missing file exited %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-budget", "bad spec!!:", fixture("manifest_base.json"), fixture("manifest_clean.json")); code != 2 {
		t.Errorf("bad budget spec exited %d, want 2", code)
	}
}

// TestSingleSampleFallback: manifests without a samples array flatten their
// headline sections into one observation each, and the gate falls back to
// median-only comparison (which still trips on a big regression).
func TestSingleSampleFallback(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeManifest := func(path string, avg float64) {
		body := `{"run":"X","seed":1,"stats":{"AvgLatency":` + strconv.FormatFloat(avg, 'f', -1, 64) + `}}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeManifest(oldP, 10.0)
	writeManifest(newP, 14.0)
	code, out, _ := runCLI(t, "-budget", "stats.AvgLatency:+10%", oldP, newP)
	if code != 1 {
		t.Fatalf("median-only +40%% regression exited %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "(1 samples)") {
		t.Errorf("expected single-sample fallback, got:\n%s", out)
	}
	if !strings.Contains(out, "?") {
		t.Errorf("single-sample deltas should carry the untested '?' marker:\n%s", out)
	}
}
