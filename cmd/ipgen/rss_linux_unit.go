//go:build linux

package main

// maxrssUnit converts ru_maxrss to bytes: Linux reports KiB.
const maxrssUnit = 1024
