//go:build darwin

package main

// maxrssUnit converts ru_maxrss to bytes: macOS reports bytes.
const maxrssUnit = 1
