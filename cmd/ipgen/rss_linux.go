//go:build linux || darwin

package main

import "syscall"

// peakRSSBytes returns the process's peak resident set size in bytes, or 0
// when the kernel does not report it. Linux reports ru_maxrss in KiB, macOS
// in bytes; the divisor is chosen per platform at build time.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss) * maxrssUnit
}
