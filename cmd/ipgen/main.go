// Command ipgen builds any supported interconnection network and reports its
// topological statistics, optionally dumping the graph in DOT format.
//
// Usage:
//
//	ipgen -net HSN -l 3 -nucleus Q2 [-sym] [-dot] [-istats]
//	ipgen -net hypercube -dim 8
//	ipgen -net star -dim 6
//	ipgen -net torus -rows 8 -cols 8
//	ipgen -net hcn -dim 4
//
// Supported -net values: HSN, ringCN, CN, dirCN, SFN, RCC, QCN, hypercube,
// foldedhypercube, star, torus, karyn, ccc, debruijn, shuffleexchange,
// petersen, ring, complete, hcn, hfn, hhn.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/benchkit"
	"repro/internal/bisect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/obs"
	"repro/internal/superip"
	"repro/internal/topo"
)

func main() {
	var (
		netName = flag.String("net", "HSN", "network family")
		l       = flag.Int("l", 2, "number of levels / super-symbols (super-IP families)")
		nucleus = flag.String("nucleus", "Q2", "nucleus: Qn, FQn, Kn, Sn, SEn, or P")
		sym     = flag.Bool("sym", false, "symmetric (distinct-seed) variant")
		dim     = flag.Int("dim", 4, "dimension (hypercube, star, ccc, ...)")
		k       = flag.Int("k", 4, "radix for k-ary n-cubes / de Bruijn base")
		rows    = flag.Int("rows", 4, "torus/mesh rows")
		cols    = flag.Int("cols", 4, "torus/mesh cols")
		a       = flag.Int("a", 7, "QCN: nucleus hypercube dimension")
		b       = flag.Int("b", 3, "QCN: merged subcube dimension")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of stats")
		istats  = flag.Bool("istats", false, "measure inter-cluster stats (super-IP families)")
		kappa   = flag.Bool("kappa", false, "measure exact vertex/edge connectivity")
		bisectN = flag.Bool("bisect", false, "estimate bisection width (exact <= 24 nodes, else Kernighan-Lin)")
		lay     = flag.Bool("layout", false, "place on a grid (recursive bisection) and report wire cost")
		par     = flag.Bool("parallel", true, "use the parallel level-synchronous enumerator (identical output)")
		workers = flag.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
		bonly   = flag.Bool("buildonly", false, "skip all-pairs statistics; report size, degree, and build time only")
		impl    = flag.Bool("implicit", false, "super-IP families: skip the build entirely and report analytic plus sampled-route statistics from the implicit topology")
		pairs   = flag.Int("pairs", 2000, "sampled (src,dst) pairs for -implicit route statistics")
		seed    = flag.Int64("seed", 1, "sampling seed for -implicit")
		prog    = flag.Bool("progress", false, "super-IP families: print one build-instrumentation line per BFS level to stderr (frontier, new nodes, per-phase wall time, arena bytes, shard load)")
		manif   = flag.String("manifest", "", "super-IP families: write a JSON build manifest (config, env metadata, per-level phase metrics) to this file; \"-\" writes to stdout")
	)
	analyze = func(g *graph.Graph) {
		if *kappa {
			k, err := faults.VertexConnectivity(g)
			exitIf(err)
			lam, err := faults.EdgeConnectivity(g)
			exitIf(err)
			fmt.Fprintf(console, "vertex-connectivity=%d edge-connectivity=%d min-degree=%d\n", k, lam, g.MinDegree())
		}
		if *bisectN {
			if g.N() <= 24 {
				w, err := bisect.Exact(g)
				exitIf(err)
				fmt.Fprintf(console, "bisection=%d (exact) layout-area-LB=%d\n", w, bisect.AreaLowerBound(w))
			} else {
				w, err := bisect.KernighanLin(g, 8, 1)
				exitIf(err)
				fmt.Fprintf(console, "bisection<=%d (Kernighan-Lin) layout-area-LB<=%d\n", w, bisect.AreaLowerBound(w))
			}
		}
		if *lay {
			p, err := layout.RecursiveBisection(g, 1)
			exitIf(err)
			res := layout.Measure(g, p)
			fmt.Fprintf(console, "layout: grid=%dx%d total-wire=%d max-wire=%d avg-wire=%.2f\n",
				p.Cols, p.Rows, res.TotalWirelength, res.MaxWirelength, res.AvgWirelength)
		}
	}
	flag.Parse()

	if *manif == "-" {
		// The build manifest owns stdout; keep it machine-parseable by
		// moving the human-readable stats lines to stderr.
		console = os.Stderr
	}

	// The parallel enumerator is byte-identical to the sequential one, so the
	// flags only choose the code path (and its speed), never the output.
	if !*par {
		core.DefaultWorkers = 1
	} else if *workers > 0 {
		core.DefaultWorkers = *workers
	}
	buildOnly = *bonly
	if *prog || *manif != "" {
		buildRec = newBuildRecorder(*prog, *manif)
	}

	switch *netName {
	case "HSN", "ringCN", "CN", "dirCN", "SFN", "RCC":
		if *impl {
			runImplicit(*netName, *l, *nucleus, *sym, *pairs, *seed)
			return
		}
		runSuperIP(*netName, *l, *nucleus, *sym, *dot, *istats)
	case "QCN":
		q := superip.QuotientCN{L: *l, A: *a, B: *b}
		g, err := q.Build()
		exitIf(err)
		report(q.Name(), g, *dot)
	case "hcn":
		buildAndReport(hier.HCN{Dim: *dim, DiameterLinks: true}, *dot)
	case "hfn":
		buildAndReport(hier.HFN{Dim: *dim}, *dot)
	case "hhn":
		buildAndReport(hier.HHN{M: *dim}, *dot)
	default:
		spec, err := classical(*netName, *dim, *k, *rows, *cols)
		exitIf(err)
		buildAndReport(spec, *dot)
	}
}

// analyze optionally runs the -kappa / -bisect analyses after report.
var analyze func(*graph.Graph)

// buildRec, when non-nil, receives per-level instrumentation from super-IP
// builds (-progress / -manifest flags).
var buildRec *buildRecorder

// buildRecorder bridges core.LevelStats into an obs.Registry (for the build
// manifest) and optionally prints one progress line per BFS level, ending
// the "builder runs blind for ten seconds" regime on large instances.
type buildRecorder struct {
	reg          *obs.Registry
	print        bool
	manifestPath string
	start        time.Time
}

func newBuildRecorder(print bool, manifestPath string) *buildRecorder {
	return &buildRecorder{reg: obs.NewRegistry(), print: print, manifestPath: manifestPath}
}

// observe implements the core.BuildOptions.Observe callback: cumulative
// phase times and expansion counters become registry counters, occupancy
// figures become gauges, and -progress renders the level as one line.
func (r *buildRecorder) observe(ls core.LevelStats) {
	if r.start.IsZero() {
		r.start = time.Now()
	}
	r.reg.Gauge("build.levels").Set(int64(ls.Level + 1))
	r.reg.Gauge("build.nodes").Set(int64(ls.TotalNodes))
	r.reg.Gauge("build.frontier").Set(int64(ls.FrontierNodes))
	if peak := r.reg.Gauge("build.frontier_peak"); int64(ls.FrontierNodes) > peak.Value() {
		peak.Set(int64(ls.FrontierNodes))
	}
	r.reg.Counter("build.new_nodes").Add(int64(ls.NewNodes))
	r.reg.Counter("build.arc_slots").Add(int64(ls.ArcSlots))
	r.reg.Counter("build.expand_ns").Add(ls.Expand.Nanoseconds())
	r.reg.Counter("build.dedup_ns").Add(ls.Dedup.Nanoseconds())
	r.reg.Counter("build.assign_ns").Add(ls.Assign.Nanoseconds())
	r.reg.Counter("build.publish_ns").Add(ls.Publish.Nanoseconds())
	r.reg.Gauge("build.candidate_arena_bytes").Set(ls.CandidateArenaBytes)
	r.reg.Gauge("build.intern_arena_bytes").Set(ls.InternArenaBytes)
	r.reg.Gauge("build.shards").Set(int64(ls.Shards))
	r.reg.Gauge("build.max_shard_load").Set(int64(ls.MaxShardLoad))
	r.reg.Hist("build.level_new_nodes").Observe(int64(ls.NewNodes))
	if r.print {
		fmt.Fprintf(os.Stderr,
			"level %-3d frontier %-9d new %-9d total %-9d | expand %-9s dedup %-9s assign %-9s publish %-9s | arena %s intern %s maxload %d/%d shards\n",
			ls.Level, ls.FrontierNodes, ls.NewNodes, ls.TotalNodes,
			roundDur(ls.Expand), roundDur(ls.Dedup), roundDur(ls.Assign), roundDur(ls.Publish),
			fmtBytes(ls.CandidateArenaBytes), fmtBytes(ls.InternArenaBytes),
			ls.MaxShardLoad, ls.Shards)
	}
}

func roundDur(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// finish writes the build manifest (config, env metadata, accumulated
// registry metrics) when -manifest asked for one.
func (r *buildRecorder) finish(name string, config map[string]any) {
	if r.manifestPath == "" {
		return
	}
	env := benchkit.CollectEnv()
	m := obs.Manifest{Run: name, Config: config, Env: &env, Metrics: r.reg.Snapshot()}
	if r.manifestPath == "-" {
		exitIf(m.WriteJSON(os.Stdout))
		return
	}
	f, err := os.Create(r.manifestPath)
	exitIf(err)
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		exitIf(err)
	}
	exitIf(f.Close())
}

// buildOnly suppresses the all-pairs statistics in report: BFS from every
// node is infeasible on million-node builds where construction itself takes
// only seconds.
var buildOnly bool

type buildable interface {
	Name() string
	Build() (*graph.Graph, error)
}

func classical(name string, dim, k, rows, cols int) (buildable, error) {
	switch name {
	case "hypercube":
		return networks.Hypercube{Dim: dim}, nil
	case "foldedhypercube":
		return networks.FoldedHypercube{Dim: dim}, nil
	case "star":
		return networks.Star{Symbols: dim}, nil
	case "torus":
		return networks.Torus2D{Rows: rows, Cols: cols}, nil
	case "karyn":
		return networks.KAryNCube{K: k, Dims: dim}, nil
	case "ccc":
		return networks.CCC{Dim: dim}, nil
	case "debruijn":
		return networks.DeBruijn{Base: k, Dim: dim}, nil
	case "shuffleexchange":
		return networks.ShuffleExchange{Dim: dim}, nil
	case "petersen":
		return networks.Petersen{}, nil
	case "ring":
		return networks.Ring{Nodes: dim}, nil
	case "complete":
		return networks.Complete{Nodes: dim}, nil
	}
	return nil, fmt.Errorf("unknown network %q", name)
}

func nucleusSpec(s string) (superip.NucleusSpec, error) {
	if s == "P" {
		return superip.NucleusPetersen(), nil
	}
	if len(s) < 2 {
		return superip.NucleusSpec{}, fmt.Errorf("bad nucleus %q", s)
	}
	kind := s[:1]
	numStr := s[1:]
	if len(s) >= 3 && (s[:2] == "FQ" || s[:2] == "SE") {
		kind, numStr = s[:2], s[2:]
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return superip.NucleusSpec{}, fmt.Errorf("bad nucleus %q", s)
	}
	switch kind {
	case "Q":
		return superip.NucleusHypercube(n), nil
	case "FQ":
		return superip.NucleusFoldedHypercube(n), nil
	case "K":
		return superip.NucleusComplete(n), nil
	case "S":
		return superip.NucleusStar(n), nil
	case "SE":
		return superip.NucleusShuffleExchange(n), nil
	}
	return superip.NucleusSpec{}, fmt.Errorf("unknown nucleus kind %q", kind)
}

func superIPNet(family string, l int, nucleus string, sym bool) *superip.Net {
	nuc, err := nucleusSpec(nucleus)
	exitIf(err)
	var net *superip.Net
	switch family {
	case "HSN":
		net = superip.HSN(l, nuc)
	case "ringCN":
		net = superip.RingCN(l, nuc)
	case "CN":
		net = superip.CompleteCN(l, nuc)
	case "dirCN":
		net = superip.DirectedCN(l, nuc)
	case "SFN":
		net = superip.SuperFlip(l, nuc)
	case "RCC":
		net = superip.RCC(l, nuc.Size)
	}
	if sym {
		net = net.SymmetricVariant()
	}
	return net
}

// runImplicit reports a super-IP network without ever materializing it: the
// analytic statistics come from the closed forms, the routed statistics from
// sampling algebraic routes over the implicit topology. Memory stays O(1) in
// N, so this works far beyond the -buildonly ceiling.
func runImplicit(family string, l int, nucleus string, sym bool, pairs int, seed int64) {
	net := superIPNet(family, l, nucleus, sym)
	imp, err := topo.NewImplicit(net.Super())
	exitIf(err)
	r, err := topo.NewAlgebraic(net.Super())
	exitIf(err)
	fmt.Fprintf(console, "%s: analytic N=%d degree=%d diameter=%d I-diameter=%d modules=%d\n",
		net.Name(), imp.N(), net.Degree(), net.Diameter(), net.IDiameter(), imp.Modules())
	start := time.Now()
	s, err := metrics.SampleRoutes(imp, r, pairs, seed)
	exitIf(err)
	elapsed := time.Since(start)
	fmt.Fprintf(console, "implicit: pairs=%d avg-hops=%.3f max-hops=%d (bound %d) avg-off-module=%.3f max-off-module=%d (bound %d)\n",
		s.Pairs, s.AvgHops, s.MaxHops, net.Diameter(), s.AvgOffModule, s.MaxOffModule, net.IDiameter())
	fmt.Fprintf(console, "routed-in=%s peak-rss=%s\n", elapsed.Round(time.Millisecond), fmtBytes(peakRSSBytes()))
}

// fmtBytes renders a byte count with a binary-unit suffix, "unknown" for 0.
func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "unknown"
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dKiB", b/1024)
	}
}

func runSuperIP(family string, l int, nucleus string, sym, dot, istats bool) {
	net := superIPNet(family, l, nucleus, sym)
	fmt.Fprintf(console, "%s: analytic N=%d degree=%d diameter=%d I-diameter=%d\n",
		net.Name(), net.N(), net.Degree(), net.Diameter(), net.IDiameter())
	if buildRec != nil {
		net.Observe = buildRec.observe
	}
	start := time.Now()
	g, ix, err := net.BuildWithIndex()
	buildElapsed = time.Since(start)
	if err != nil {
		fmt.Fprintf(console, "(not built: %v)\n", err)
		return
	}
	if buildRec != nil {
		buildRec.finish(net.Name(), map[string]any{
			"family": family, "l": l, "nucleus": nucleus, "sym": sym,
			"workers": core.DefaultWorkers, "build_ms": buildElapsed.Milliseconds(),
		})
	}
	report(net.Name(), g, dot)
	if istats {
		p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
		st := metrics.IStats(g, p)
		fmt.Fprintf(console, "modules=%d module-size=%d I-degree=%.3f I-diameter=%d avg-I-distance=%.3f\n",
			p.K, p.MaxClusterSize(), metrics.IDegree(g, p), st.Diameter, st.AvgDistance)
	}
}

func buildAndReport(spec buildable, dot bool) {
	start := time.Now()
	g, err := spec.Build()
	buildElapsed = time.Since(start)
	exitIf(err)
	report(spec.Name(), g, dot)
}

// buildElapsed is the wall-clock time of the most recent graph construction,
// printed by report in -buildonly mode.
var buildElapsed time.Duration

func report(name string, g *graph.Graph, dot bool) {
	if dot {
		fmt.Print(g.DOT(sanitize(name)))
		return
	}
	if buildOnly {
		fmt.Fprintf(console, "%s: N=%d edges=%d degree=%d..%d built-in=%s peak-rss=%s\n",
			name, g.N(), g.NumEdges(), g.MinDegree(), g.MaxDegree(),
			buildElapsed.Round(time.Millisecond), fmtBytes(peakRSSBytes()))
		if analyze != nil {
			analyze(g)
		}
		return
	}
	st := g.Symmetrized().AllPairs()
	fmt.Fprintf(console, "%s: N=%d edges=%d degree=%d..%d diameter=%d avg-distance=%.3f connected=%v\n",
		name, g.N(), g.NumEdges(), g.MinDegree(), g.MaxDegree(),
		st.Diameter, st.AvgDistance, st.Connected)
	if analyze != nil {
		analyze(g)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// console receives the human-readable stats output. It is stdout except
// under -manifest -, where the manifest JSON owns stdout and the stats
// lines move to stderr.
var console io.Writer = os.Stdout

func exitIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipgen: %v\n", err)
		os.Exit(1)
	}
}
