//go:build !linux && !darwin

package main

// peakRSSBytes is unavailable on this platform.
func peakRSSBytes() int64 { return 0 }
