// Command simulate runs the packet-switched network simulator on a chosen
// network and module packing, sweeping injection rates and off-module link
// speed ratios — the empirical counterpart of the paper's Section 5
// latency arguments.
//
// Usage:
//
//	simulate -net HSN -l 2 -nucleus Q4 -ratios 1,4,16 -rates 0.002,0.01
//	simulate -net hypercube -dim 8 -module 4
//
// Fault injection (degraded-mode operation, see internal/netsim.RunFaulty):
//
//	simulate -net HSN -l 2 -nucleus Q3 -faults 4 -mtbf 250 -repair 500
//
// -faults caps how many random faults strike; -mtbf sets the mean cycles
// between fault arrivals; -repair heals each fault after that many cycles
// (0 = permanent). Faulty runs print loss/retransmission/reroute columns
// and the latency inflation against the fault-free baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/networks"
	"repro/internal/superip"
)

func main() {
	var (
		netName = flag.String("net", "HSN", "network: HSN, ringCN, CN, SFN, hypercube, torus")
		l       = flag.Int("l", 2, "levels (super-IP families)")
		nucleus = flag.String("nucleus", "Q4", "nucleus: Qn or FQn")
		dim     = flag.Int("dim", 8, "hypercube dimension")
		module  = flag.Int("module", 4, "hypercube: module subcube dimension; torus: tile side")
		rows    = flag.Int("rows", 16, "torus rows")
		cols    = flag.Int("cols", 16, "torus cols")
		ratios  = flag.String("ratios", "1,4,16", "off-module service periods")
		rates   = flag.String("rates", "0.005", "injection rates")
		cycles  = flag.Int("cycles", 3000, "measurement cycles")
		warmup  = flag.Int("warmup", 300, "warmup cycles")
		seed    = flag.Int64("seed", 42, "PRNG seed")
		nFaults = flag.Int("faults", 0, "max random faults to inject (0 = fault-free)")
		mtbf    = flag.Float64("mtbf", 250, "mean cycles between fault arrivals")
		repair  = flag.Int("repair", 0, "cycles until a fault heals (0 = permanent)")
		nodeFrc = flag.Float64("nodefaults", 0, "fraction of faults that kill a node instead of a link")
	)
	flag.Parse()

	g, part, name, err := buildSystem(*netName, *l, *nucleus, *dim, *module, *rows, *cols)
	exitIf(err)

	ist := metrics.IStats(g, part)
	fmt.Printf("%s: N=%d modules=%d I-degree=%.2f I-diameter=%d II-cost=%.2f\n",
		name, g.N(), part.K, metrics.IDegree(g, part), ist.Diameter,
		metrics.IICost(metrics.IDegree(g, part), int(ist.Diameter)))

	var plan *netsim.FaultPlan
	if *nFaults > 0 {
		plan, err = netsim.RandomFaults{
			MTBF:         *mtbf,
			RepairTime:   *repair,
			NodeFraction: *nodeFrc,
			Start:        *warmup,
			Horizon:      *warmup + *cycles,
			MaxFaults:    *nFaults,
			Seed:         *seed,
		}.Plan(g)
		exitIf(err)
		fmt.Printf("fault plan: %d events (mtbf %.0f, repair %d, node fraction %.2f)\n",
			plan.Len(), *mtbf, *repair, *nodeFrc)
	}

	if plan == nil {
		fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-8s\n",
			"ratio", "rate", "injected", "delivered", "avg-lat", "max-lat")
	} else {
		fmt.Printf("%-8s %-8s %-10s %-10s %-6s %-6s %-10s %-9s %-9s %-9s\n",
			"ratio", "rate", "injected", "delivered", "lost", "retx", "avg-lat", "lat-infl", "reroutes", "detours")
	}
	for _, ratio := range parseInts(*ratios) {
		for _, rate := range parseFloats(*rates) {
			cfg := netsim.Config{
				Graph:           g,
				Partition:       &part,
				OffModulePeriod: ratio,
				InjectionRate:   rate,
				WarmupCycles:    *warmup,
				MeasureCycles:   *cycles,
				Seed:            *seed,
			}
			if plan == nil {
				st, err := netsim.Run(cfg)
				exitIf(err)
				fmt.Printf("%-8d %-8.4f %-10d %-10d %-10.2f %-8d\n",
					ratio, rate, st.Injected, st.Delivered, st.AvgLatency, st.MaxLatency)
				continue
			}
			fs, _, err := netsim.RunFaultyWithBaseline(cfg, netsim.FaultConfig{Plan: plan})
			exitIf(err)
			fmt.Printf("%-8d %-8.4f %-10d %-10d %-6d %-6d %-10.2f %-9.2f %-9d %-9d\n",
				ratio, rate, fs.Injected, fs.Delivered, fs.Lost, fs.Retransmitted,
				fs.AvgLatency, fs.LatencyInflation, fs.RerouteEvents, fs.MisroutedHops)
		}
	}
}

func buildSystem(name string, l int, nucleus string, dim, module, rows, cols int) (*graph.Graph, metrics.Partition, string, error) {
	switch name {
	case "HSN", "ringCN", "CN", "SFN":
		var nuc superip.NucleusSpec
		switch {
		case strings.HasPrefix(nucleus, "FQ"):
			n, err := strconv.Atoi(nucleus[2:])
			if err != nil {
				return nil, metrics.Partition{}, "", err
			}
			nuc = superip.NucleusFoldedHypercube(n)
		case strings.HasPrefix(nucleus, "Q"):
			n, err := strconv.Atoi(nucleus[1:])
			if err != nil {
				return nil, metrics.Partition{}, "", err
			}
			nuc = superip.NucleusHypercube(n)
		default:
			return nil, metrics.Partition{}, "", fmt.Errorf("unknown nucleus %q", nucleus)
		}
		var net *superip.Net
		switch name {
		case "HSN":
			net = superip.HSN(l, nuc)
		case "ringCN":
			net = superip.RingCN(l, nuc)
		case "CN":
			net = superip.CompleteCN(l, nuc)
		case "SFN":
			net = superip.SuperFlip(l, nuc)
		}
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return nil, metrics.Partition{}, "", err
		}
		return g, metrics.NucleusPartition(ix, net.Nucleus.Nuc.M()), net.Name(), nil
	case "hypercube":
		g, err := networks.Hypercube{Dim: dim}.Build()
		if err != nil {
			return nil, metrics.Partition{}, "", err
		}
		return g, metrics.SubcubePartition(g.N(), module), fmt.Sprintf("Q%d/Q%d", dim, module), nil
	case "torus":
		g, err := networks.Torus2D{Rows: rows, Cols: cols}.Build()
		if err != nil {
			return nil, metrics.Partition{}, "", err
		}
		p, err := metrics.GridPartition(rows, cols, module, module)
		if err != nil {
			return nil, metrics.Partition{}, "", err
		}
		return g, p, fmt.Sprintf("torus(%dx%d)/%dx%d", rows, cols, module, module), nil
	}
	return nil, metrics.Partition{}, "", fmt.Errorf("unknown network %q", name)
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		exitIf(err)
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		exitIf(err)
		out = append(out, v)
	}
	return out
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
}
