// Command simulate runs the packet-switched network simulator on a chosen
// network and module packing, sweeping injection rates and off-module link
// speed ratios — the empirical counterpart of the paper's Section 5
// latency arguments.
//
// Usage:
//
//	simulate -net HSN -l 2 -nucleus Q4 -ratios 1,4,16 -rates 0.002,0.01
//	simulate -net hypercube -dim 8 -module 4
//
// Fault injection (degraded-mode operation, see internal/netsim.RunFaulty):
//
//	simulate -net HSN -l 2 -nucleus Q3 -faults 4 -mtbf 250 -repair 500
//
// -faults caps how many random faults strike; -mtbf sets the mean cycles
// between fault arrivals; -repair heals each fault after that many cycles
// (0 = permanent). Faulty runs print loss/retransmission/reroute columns
// and the latency inflation against the fault-free baseline.
//
// Faults compose with -implicit: the plan is drawn in id space and the
// algebraic router is wrapped in the fault-aware rerouter, so degraded-mode
// runs work on instances far too large to materialize:
//
//	simulate -net HSN -l 4 -nucleus Q5 -sym -implicit -faults 8 -rates 2e-7
//
// Observability (see internal/obs):
//
//	simulate -net HSN -l 2 -nucleus Q3 -hist -timeseries load.csv -toplinks 5
//	simulate -net torus -rates 0.02 -trace trace.json -progress 500
//	simulate -net HSN -l 4 -nucleus Q5 -sym -implicit -topmodules 8 \
//	    -moduleseries mods.csv -manifest run.json
//
// -hist adds p50/p95/p99 latency columns and prints an ASCII histogram per
// run; -timeseries exports per-link load windows (.jsonl = JSON lines,
// anything else CSV, with the per-module series written alongside);
// -moduleseries exports the module-aggregated series (memory bounded by
// module count — the collector for -implicit runs past the materialization
// ceiling); -topmodules prints the hottest modules by busy cycles;
// -trace writes Chrome trace-event JSON (open in chrome://tracing or
// Perfetto); -toplinks prints the busiest links after each run; -progress
// emits a live ticker (delivered-rate and ETA) to stderr; -manifest writes a
// machine-readable JSON record per run (config, seed, stats, percentiles,
// router counters, registry metrics, host environment; "-" = stdout);
// -repeat n reruns each combination with consecutive seeds and records every
// repetition in the manifest's samples array so cmd/obsdiff can
// significance-test two runs against each other; -live serves a streaming
// dashboard (HTML charts at /, JSON at /snapshot, SSE at /stream, expvar at
// /debug/vars) while the sweep executes; -pprof serves net/http/pprof plus
// the process metrics registry as the expvar variable "sim".
//
// All collectors work under -implicit: probes attach to the sparse
// simulator's hooks, and implicit runs additionally print the algebraic
// router's cache/reroute telemetry after each row. When the sweep covers
// several ratio x rate combinations, output filenames get a -r<ratio>-p<rate>
// suffix so runs don't clobber each other.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/networks"
	"repro/internal/obs"
	"repro/internal/superip"
	"repro/internal/topo"
)

// registryProbe mirrors run progress into a concurrency-safe metrics
// registry (obs.Registry) so a -pprof listener exposes it live at
// /debug/vars (expvar variable "sim") and -manifest can snapshot it.
// Counters are cumulative across the whole sweep; the cycle gauge tracks
// the current run.
type registryProbe struct {
	obs.NopProbe
	reg           *obs.Registry
	cycle         *obs.Gauge
	queued        *obs.Gauge
	injected      *obs.Counter
	delivered     *obs.Counter
	dropped       *obs.Counter
	retransmitted *obs.Counter
	faults        *obs.Counter
	latency       *obs.StripedHist
}

func newRegistryProbe() *registryProbe {
	reg := obs.NewRegistry()
	return &registryProbe{
		reg:           reg,
		cycle:         reg.Gauge("cycle"),
		queued:        reg.Gauge("queued"),
		injected:      reg.Counter("injected"),
		delivered:     reg.Counter("delivered"),
		dropped:       reg.Counter("dropped"),
		retransmitted: reg.Counter("retransmitted"),
		faults:        reg.Counter("faults"),
		latency:       reg.Hist("latency"),
	}
}

func (p *registryProbe) Tick(cycle int) { p.cycle.Set(int64(cycle)) }

func (p *registryProbe) Inject(int, int64, int64, int64, bool) { p.injected.Inc() }

// Enqueue/Hop keep the queued gauge equal to the number of packets sitting
// in link FIFOs (the same conservation discipline obs.ModuleSeries uses:
// enqueues minus transmission starts minus queue kills).
func (p *registryProbe) Enqueue(int, int64, int64, int64, int) { p.queued.Add(1) }

func (p *registryProbe) Hop(int, int64, int64, int64, int, int) { p.queued.Add(-1) }

func (p *registryProbe) Deliver(_ int, _ int64, _ int64, latency int, _ bool) {
	p.delivered.Inc()
	p.latency.Observe(int64(latency))
}

func (p *registryProbe) Drop(_ int, _ int64, _ int64, reason obs.DropReason) {
	p.dropped.Inc()
	if reason == obs.DropQueueKilled {
		p.queued.Add(-1)
	}
}

func (p *registryProbe) Retransmit(int, int64, int64, int) { p.retransmitted.Inc() }

func (p *registryProbe) Fault(_ int, _, _ int64, _ bool, down bool) {
	if down {
		p.faults.Inc()
	}
}

// obsOpts carries the observability flag set shared by the materialized and
// implicit paths.
type obsOpts struct {
	hist       bool
	tsFile     string
	tsEvery    int
	traceFile  string
	traceNth   int
	topLinks   int
	topModules int
	msFile     string
	manifest   string
	progress   int
	repeat     int
	total      int // warmup+measure cycles, for the progress ETA
	rp         *registryProbe
	live       *obs.LiveServer
	liveEvery  int
	env        *benchkit.Env
}

// collectors is one run's collector set, built by obsOpts.build.
type collectors struct {
	lh *obs.LatencyHist
	ts *obs.TimeSeries
	tr *obs.Trace
	ms *obs.ModuleSeries
}

// build assembles the run's probe from the requested collectors. Every
// collector is optional; obs.Multi collapses to nil when none are
// requested, keeping the simulators on their no-observer fast path.
func (o obsOpts) build(moduleOf func(int64) int64) (obs.Probe, *collectors) {
	c := &collectors{}
	var probes []obs.Probe
	if o.hist {
		c.lh = &obs.LatencyHist{}
		probes = append(probes, c.lh)
	}
	if o.tsFile != "" || o.topLinks > 0 {
		c.ts = obs.NewTimeSeries(moduleOf, o.tsEvery)
		probes = append(probes, c.ts)
	}
	if o.msFile != "" || o.topModules > 0 {
		c.ms = obs.NewModuleSeries(moduleOf, o.tsEvery)
		probes = append(probes, c.ms)
	}
	if o.traceFile != "" {
		c.tr = &obs.Trace{SampleEvery: o.traceNth}
		probes = append(probes, c.tr)
	}
	if o.progress > 0 {
		probes = append(probes, &obs.Progress{Every: o.progress, Total: o.total})
	}
	if o.rp != nil {
		probes = append(probes, o.rp)
	}
	if o.live != nil {
		probes = append(probes, o.live.Sampler(o.liveEvery))
	}
	return obs.Multi(probes...), c
}

func main() {
	var (
		netName = flag.String("net", "HSN", "network: HSN, ringCN, CN, SFN, hypercube, torus")
		l       = flag.Int("l", 2, "levels (super-IP families)")
		nucleus = flag.String("nucleus", "Q4", "nucleus: Qn or FQn")
		sym     = flag.Bool("sym", false, "symmetric (distinct-seed) variant (super-IP families)")
		routerK = flag.String("router", "bfs", "routing for super-IP runs: bfs (per-destination tables) or algebraic (Theorem 4.1/4.3 label arithmetic, O(1) state per node)")
		impl    = flag.Bool("implicit", false, "simulate the implicit topology without materializing the graph (super-IP families; forces algebraic routing; -faults uses the fault-aware algebraic router; observability collectors attach to the sparse simulator's probe hooks)")
		shards  = flag.Int("shards", 0, "run -implicit sweeps on the sharded engine with this many worker goroutines (module-partitioned lanes with conservative lookahead; any shard count produces identical stats for a fixed seed, so this only changes wall-clock; 0 = classic single-loop simulator)")
		dim     = flag.Int("dim", 8, "hypercube dimension")
		module  = flag.Int("module", 4, "hypercube: module subcube dimension; torus: tile side")
		rows    = flag.Int("rows", 16, "torus rows")
		cols    = flag.Int("cols", 16, "torus cols")
		ratios  = flag.String("ratios", "1,4,16", "off-module service periods")
		rates   = flag.String("rates", "0.005", "injection rates")
		cycles  = flag.Int("cycles", 3000, "measurement cycles")
		warmup  = flag.Int("warmup", 300, "warmup cycles")
		seed    = flag.Int64("seed", 42, "PRNG seed")
		nFaults = flag.Int("faults", 0, "max random faults to inject (0 = fault-free)")
		mtbf    = flag.Float64("mtbf", 250, "mean cycles between fault arrivals")
		repair  = flag.Int("repair", 0, "cycles until a fault heals (0 = permanent)")
		nodeFrc = flag.Float64("nodefaults", 0, "fraction of faults that kill a node instead of a link")

		histOn     = flag.Bool("hist", false, "collect latency histograms: adds p50/p95/p99 columns and prints an ASCII histogram per run")
		tsFile     = flag.String("timeseries", "", "write per-link load windows to this file (.jsonl = JSON lines, else CSV with a .modules.csv sibling)")
		tsEvery    = flag.Int("sample", 50, "time-series sample window, in cycles")
		traceFile  = flag.String("trace", "", "write Chrome trace-event JSON of sampled packet lifecycles to this file")
		traceNth   = flag.Int("tracesample", 64, "trace every n-th packet (1 = every packet)")
		topLinks   = flag.Int("toplinks", 0, "after each run, print the n busiest links")
		topModules = flag.Int("topmodules", 0, "after each run, print the n busiest modules (busy cycles, intra/inter split)")
		msFile     = flag.String("moduleseries", "", "write the module-aggregated load series to this file (.jsonl = JSON lines, else CSV; memory bounded by module count)")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (config, seed, stats, percentiles, router counters, registry metrics, host environment) to this file per run; \"-\" writes to stdout")
		repeat     = flag.Int("repeat", 1, "run each ratio x rate combination n times with seeds seed..seed+n-1 and record every repetition's flattened stats in the manifest's samples array (for cmd/obsdiff significance testing; requires -manifest)")
		progress   = flag.Int("progress", 0, "print a live progress line (with delivered-rate and ETA) to stderr every n cycles")
		liveAddr   = flag.String("live", "", "serve the live metrics dashboard on this address (e.g. localhost:8080): / (HTML charts), /snapshot (latest sample JSON, ?all=1 for the ring), /stream (SSE), /debug/vars (expvar variable \"sim\")")
		liveEvery  = flag.Int("livesample", 200, "cycles between live dashboard samples (with -live)")
		pprofAddr  = flag.String("pprof", "", "serve profiling endpoints on this address (e.g. localhost:6060): /debug/pprof/ (net/http/pprof: profile, heap, goroutine, ...) and /debug/vars (the process metrics registry as expvar variable \"sim\")")
	)
	flag.Parse()

	o := obsOpts{
		hist: *histOn, tsFile: *tsFile, tsEvery: *tsEvery,
		traceFile: *traceFile, traceNth: *traceNth,
		topLinks: *topLinks, topModules: *topModules, msFile: *msFile,
		manifest: *manifest, progress: *progress, repeat: *repeat,
		total: *warmup + *cycles, liveEvery: *liveEvery,
	}
	if o.repeat < 1 {
		exitIf(fmt.Errorf("-repeat must be >= 1 (got %d)", o.repeat))
	}
	if o.manifest == "-" {
		// The manifest owns stdout; keep it machine-parseable by moving the
		// human-readable tables to stderr.
		console = os.Stderr
	}
	if o.repeat > 1 && o.manifest == "" {
		exitIf(fmt.Errorf("-repeat %d without -manifest would discard all but the first run; add -manifest <file> (or \"-\" for stdout)", o.repeat))
	}
	if *pprofAddr != "" || *manifest != "" || *liveAddr != "" {
		// The registry costs a few atomic ops per event, so it only attaches
		// when something consumes it: a live /debug/vars or dashboard
		// listener, or the manifest's metrics section.
		o.rp = newRegistryProbe()
	}
	if *manifest != "" {
		env := benchkit.CollectEnv()
		o.env = &env
	}
	if *pprofAddr != "" || *liveAddr != "" {
		o.rp.reg.PublishExpvar("sim")
	}
	if *pprofAddr != "" {
		// Bind synchronously so an unusable address (port taken, bad
		// syntax, privileged port) fails the run up front instead of a
		// goroutine racing a message to stderr while the sweep silently
		// continues unprofiled.
		ln, err := net.Listen("tcp", *pprofAddr)
		exitIf(err)
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "simulate: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving http://%s/debug/pprof/ (profiles) and /debug/vars (registry variable \"sim\")\n", ln.Addr())
	}
	if *liveAddr != "" {
		o.live = obs.NewLiveServer(o.rp.reg, 0)
		// Same synchronous-bind discipline as -pprof.
		ln, err := net.Listen("tcp", *liveAddr)
		exitIf(err)
		go func() {
			if err := http.Serve(ln, o.live.Handler()); err != nil {
				fmt.Fprintf(os.Stderr, "simulate: live server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "live dashboard at http://%s/ (JSON /snapshot, SSE /stream, expvar /debug/vars)\n", ln.Addr())
	}

	if *shards > 0 && !*impl {
		exitIf(fmt.Errorf("-shards requires -implicit (the sharded engine runs implicit topologies)"))
	}
	if *impl {
		runImplicitSweep(*netName, *l, *nucleus, *sym,
			parseInts(*ratios), parseFloats(*rates), *cycles, *warmup, *seed,
			*nFaults, *mtbf, *repair, *nodeFrc, *shards, o)
		return
	}

	g, part, name, net, ix, err := buildSystem(*netName, *l, *nucleus, *sym, *dim, *module, *rows, *cols)
	exitIf(err)

	var router netsim.Router
	switch *routerK {
	case "bfs":
	case "algebraic":
		if net == nil {
			exitIf(fmt.Errorf("-router=algebraic requires a super-IP family (got %q)", *netName))
		}
		ar, err := topo.NewAlgebraicWith(net.Super(), topo.NewMaterialized(g, ix))
		exitIf(err)
		router = ar
		if o.live != nil {
			o.live.RouterSource(ar.RouterStats)
		}
	default:
		exitIf(fmt.Errorf("unknown -router %q (want bfs or algebraic)", *routerK))
	}

	ist := metrics.IStats(g, part)
	fmt.Fprintf(console, "%s: N=%d modules=%d I-degree=%.2f I-diameter=%d II-cost=%.2f\n",
		name, g.N(), part.K, metrics.IDegree(g, part), ist.Diameter,
		metrics.IICost(metrics.IDegree(g, part), int(ist.Diameter)))

	var plan *netsim.FaultPlan
	if *nFaults > 0 {
		plan, err = netsim.RandomFaults{
			MTBF:         *mtbf,
			RepairTime:   *repair,
			NodeFraction: *nodeFrc,
			Start:        *warmup,
			Horizon:      *warmup + *cycles,
			MaxFaults:    *nFaults,
			Seed:         *seed,
		}.Plan(g)
		exitIf(err)
		fmt.Fprintf(console, "fault plan: %d events (mtbf %.0f, repair %d, node fraction %.2f)\n",
			plan.Len(), *mtbf, *repair, *nodeFrc)
	}

	histCols := ""
	if *histOn {
		histCols = fmt.Sprintf(" %-8s %-8s %-8s", "p50", "p95", "p99")
	}
	if plan == nil {
		fmt.Fprintf(console, "%-8s %-8s %-10s %-10s %-8s %-10s %-8s%s\n",
			"ratio", "rate", "injected", "delivered", "expired", "avg-lat", "max-lat", histCols)
	} else {
		fmt.Fprintf(console, "%-8s %-8s %-10s %-10s %-6s %-8s %-6s %-10s %-9s %-9s %-9s%s\n",
			"ratio", "rate", "injected", "delivered", "lost", "expired", "retx", "avg-lat", "lat-infl", "reroutes", "detours", histCols)
	}
	moduleOf := func(u int64) int64 { return int64(part.Of[u]) }
	ratioList, rateList := parseInts(*ratios), parseFloats(*rates)
	multi := len(ratioList)*len(rateList) > 1
	for _, ratio := range ratioList {
		for _, rate := range rateList {
			// With -repeat n, repetition r reruns the combination with seed
			// seed+r and a fresh probe set; the console row and collector
			// exports come from repetition 0, and every repetition's
			// flattened stats land in the manifest's samples array.
			var samples []map[string]float64
			var headStats any
			var headPct map[string]float64
			for rep := 0; rep < o.repeat; rep++ {
				pb, col := o.build(moduleOf)
				cfg := netsim.Config{
					Graph:           g,
					Partition:       &part,
					OffModulePeriod: ratio,
					InjectionRate:   rate,
					WarmupCycles:    *warmup,
					MeasureCycles:   *cycles,
					Seed:            *seed + int64(rep),
					Probe:           pb,
					Router:          router,
				}
				if plan == nil {
					st, err := netsim.Run(cfg)
					exitIf(err)
					pct := percentiles(*histOn, st.P50Latency, st.P95Latency, st.P99Latency)
					samples = append(samples, obs.Manifest{Stats: st, Percentiles: pct}.Flatten())
					if rep > 0 {
						continue
					}
					headStats, headPct = st, pct
					fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-8d %-10.2f %-8d%s\n",
						ratio, rate, st.Injected, st.Delivered, st.Expired,
						st.AvgLatency, st.MaxLatency, quantileCols(*histOn, st.P50Latency, st.P95Latency, st.P99Latency))
				} else {
					fs, _, err := netsim.RunFaultyWithBaseline(cfg, netsim.FaultConfig{Plan: plan})
					exitIf(err)
					pct := percentiles(*histOn, fs.P50Latency, fs.P95Latency, fs.P99Latency)
					samples = append(samples, obs.Manifest{Stats: fs, Percentiles: pct}.Flatten())
					if rep > 0 {
						continue
					}
					headStats, headPct = fs, pct
					fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-6d %-8d %-6d %-10.2f %-9.2f %-9d %-9d%s\n",
						ratio, rate, fs.Injected, fs.Delivered, fs.Lost, fs.Expired, fs.Retransmitted,
						fs.AvgLatency, fs.LatencyInflation, fs.RerouteEvents, fs.MisroutedHops,
						quantileCols(*histOn, fs.P50Latency, fs.P95Latency, fs.P99Latency))
				}
				col.export(o, ratio, rate, multi)
			}
			o.writeManifest(name, runConfig(ratio, rate, *warmup, *cycles, *nFaults, 0), *seed,
				headStats, headPct, nil, samples, ratio, rate, multi)
		}
	}
}

func quantileCols(on bool, p50, p95, p99 float64) string {
	if !on {
		return ""
	}
	return fmt.Sprintf(" %-8.1f %-8.1f %-8.1f", p50, p95, p99)
}

// percentiles builds the manifest's percentile map (nil when -hist is off
// and the quantiles were never collected).
func percentiles(on bool, p50, p95, p99 float64) map[string]float64 {
	if !on {
		return nil
	}
	return map[string]float64{"p50": p50, "p95": p95, "p99": p99}
}

// runConfig captures the per-run sweep coordinates for the manifest. The
// shards key appears only on sharded-engine runs, so classic manifests keep
// their historical shape (and diff clean against old recordings).
func runConfig(ratio int, rate float64, warmup, cycles, faults, shards int) map[string]any {
	m := map[string]any{
		"ratio": ratio, "rate": rate,
		"warmup": warmup, "cycles": cycles, "faults": faults,
	}
	if shards > 0 {
		m["shards"] = shards
	}
	return m
}

// writeManifest emits the JSON run manifest when -manifest is set. router is
// nil for runs without router telemetry (the materialized BFS path); samples
// holds one flattened stat map per -repeat repetition (recorded when there is
// more than one, so single-run manifests keep their historical shape). A
// manifest path of "-" writes to stdout.
func (o obsOpts) writeManifest(name string, cfg map[string]any, seed int64, stats any,
	pct map[string]float64, router *obs.RouterStats, samples []map[string]float64,
	ratio int, rate float64, multi bool) {
	if o.manifest == "" {
		return
	}
	m := obs.Manifest{
		Run: name, Config: cfg, Seed: seed, Stats: stats,
		Percentiles: pct, Router: router, Env: o.env,
	}
	if len(samples) > 1 {
		m.Samples = samples
	}
	if o.rp != nil {
		m.Metrics = o.rp.reg.Snapshot()
	}
	if o.manifest == "-" {
		exitIf(m.WriteJSON(os.Stdout))
		return
	}
	exitIf(writeTo(suffixed(o.manifest, ratio, rate, multi), m.WriteJSON))
}

// export writes whatever collectors the run carried. With a multi-run
// sweep, filenames gain a -r<ratio>-p<rate> suffix before the extension.
func (c *collectors) export(o obsOpts, ratio int, rate float64, multi bool) {
	if c.lh != nil && c.lh.Count() > 0 {
		exitIf(c.lh.WriteText(console))
	}
	if c.ts != nil {
		c.ts.Flush()
		if o.tsFile != "" {
			name := suffixed(o.tsFile, ratio, rate, multi)
			if strings.HasSuffix(name, ".jsonl") {
				exitIf(writeTo(name, c.ts.WriteJSONL))
			} else {
				exitIf(writeTo(name, c.ts.WriteCSV))
				ext := filepath.Ext(name)
				exitIf(writeTo(strings.TrimSuffix(name, ext)+".modules"+ext, c.ts.WriteModulesCSV))
			}
		}
		if o.topLinks > 0 {
			fmt.Fprintf(console, "top %d links by busy cycles:\n", o.topLinks)
			for _, l := range c.ts.TopLinks(o.topLinks) {
				kind := "on-module "
				if l.OffModule {
					kind = "off-module"
				}
				fmt.Fprintf(console, "  %4d -> %-4d %s  hops %-7d busy %-8d util %.3f\n",
					l.U, l.V, kind, l.Hops, l.Busy, l.Util)
			}
		}
	}
	if c.ms != nil {
		c.ms.Flush()
		if o.msFile != "" {
			name := suffixed(o.msFile, ratio, rate, multi)
			if strings.HasSuffix(name, ".jsonl") {
				exitIf(writeTo(name, c.ms.WriteJSONL))
			} else {
				exitIf(writeTo(name, c.ms.WriteCSV))
			}
		}
		if o.topModules > 0 {
			fmt.Fprintf(console, "top %d of %d active modules by busy cycles:\n",
				o.topModules, c.ms.ActiveModules())
			for _, m := range c.ms.TopModules(o.topModules) {
				fmt.Fprintf(console, "  module %-8d busy %-8d (intra %-8d inter %-8d) hops %d/%d  in %-7d out %d\n",
					m.Module, m.IntraBusy+m.InterBusy, m.IntraBusy, m.InterBusy,
					m.IntraHops, m.InterHops, m.Injected, m.Delivered)
			}
		}
	}
	if c.tr != nil && o.traceFile != "" {
		exitIf(writeTo(suffixed(o.traceFile, ratio, rate, multi), c.tr.WriteJSON))
	}
}

func suffixed(name string, ratio int, rate float64, multi bool) string {
	if !multi {
		return name
	}
	ext := filepath.Ext(name)
	return fmt.Sprintf("%s-r%d-p%g%s", strings.TrimSuffix(name, ext), ratio, rate, ext)
}

func writeTo(name string, write func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// superNet assembles the super-IP specification for the simulate families.
func superNet(name string, l int, nucleus string, sym bool) (*superip.Net, error) {
	var nuc superip.NucleusSpec
	switch {
	case strings.HasPrefix(nucleus, "FQ"):
		n, err := strconv.Atoi(nucleus[2:])
		if err != nil {
			return nil, err
		}
		nuc = superip.NucleusFoldedHypercube(n)
	case strings.HasPrefix(nucleus, "Q"):
		n, err := strconv.Atoi(nucleus[1:])
		if err != nil {
			return nil, err
		}
		nuc = superip.NucleusHypercube(n)
	default:
		return nil, fmt.Errorf("unknown nucleus %q", nucleus)
	}
	var net *superip.Net
	switch name {
	case "HSN":
		net = superip.HSN(l, nuc)
	case "ringCN":
		net = superip.RingCN(l, nuc)
	case "CN":
		net = superip.CompleteCN(l, nuc)
	case "SFN":
		net = superip.SuperFlip(l, nuc)
	default:
		return nil, fmt.Errorf("unknown super-IP family %q", name)
	}
	if sym {
		net = net.SymmetricVariant()
	}
	return net, nil
}

// buildSystem materializes the requested network. For super-IP families it
// also returns the specification and label index so callers can attach the
// algebraic router; both are nil for classical networks.
func buildSystem(name string, l int, nucleus string, sym bool, dim, module, rows, cols int) (*graph.Graph, metrics.Partition, string, *superip.Net, *core.Index, error) {
	switch name {
	case "HSN", "ringCN", "CN", "SFN":
		net, err := superNet(name, l, nucleus, sym)
		if err != nil {
			return nil, metrics.Partition{}, "", nil, nil, err
		}
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return nil, metrics.Partition{}, "", nil, nil, err
		}
		return g, metrics.NucleusPartition(ix, net.Nucleus.Nuc.M()), net.Name(), net, ix, nil
	case "hypercube":
		g, err := networks.Hypercube{Dim: dim}.Build()
		if err != nil {
			return nil, metrics.Partition{}, "", nil, nil, err
		}
		return g, metrics.SubcubePartition(g.N(), module), fmt.Sprintf("Q%d/Q%d", dim, module), nil, nil, nil
	case "torus":
		g, err := networks.Torus2D{Rows: rows, Cols: cols}.Build()
		if err != nil {
			return nil, metrics.Partition{}, "", nil, nil, err
		}
		p, err := metrics.GridPartition(rows, cols, module, module)
		if err != nil {
			return nil, metrics.Partition{}, "", nil, nil, err
		}
		return g, p, fmt.Sprintf("torus(%dx%d)/%dx%d", rows, cols, module, module), nil, nil, nil
	}
	return nil, metrics.Partition{}, "", nil, nil, fmt.Errorf("unknown network %q", name)
}

// runImplicitSweep is the -implicit path: the ratio x rate sweep of main,
// executed by the sparse simulator over the implicit topology with algebraic
// routing. Nothing O(N) is allocated, so instances far beyond the
// materializable ceiling (superip.Net.Build refuses N > 2^21) simulate in
// memory proportional to the in-flight packet population. With -faults the
// algebraic router is wrapped in the fault-aware rerouter and the plan is
// drawn in id space (RandomFaults.PlanTopo) — degraded-mode runs need no
// graph either. Observability collectors ride along through the probe
// hooks, with modules resolved algebraically (Implicit.Module), and every
// row is followed by the router's cache/reroute telemetry. With shards > 0
// the sweep runs on the sharded engine instead: nodes are partitioned into
// module-owned lanes stepped by that many worker goroutines, with per-lane
// topology/router/fault-sink instances built by a lane factory (none of the
// algebraic oracles need to be goroutine-safe that way). Stats are
// deterministic in everything but wall-clock — any shard count yields the
// same numbers for a fixed seed.
func runImplicitSweep(netName string, l int, nucleus string, sym bool, ratios []int, rates []float64, cycles, warmup int, seed int64,
	nFaults int, mtbf float64, repair int, nodeFrc float64, shards int, o obsOpts) {
	net, err := superNet(netName, l, nucleus, sym)
	exitIf(err)
	imp, err := topo.NewImplicit(net.Super())
	exitIf(err)
	r, err := topo.NewAlgebraic(net.Super())
	exitIf(err)
	fmt.Fprintf(console, "%s (implicit): N=%d modules=%d degree=%d diameter=%d I-diameter=%d\n",
		net.Name(), imp.N(), imp.Modules(), net.Degree(), net.Diameter(), net.IDiameter())

	var plan *netsim.FaultPlan
	var fs *topo.FaultSet
	if nFaults > 0 {
		plan, err = netsim.RandomFaults{
			MTBF:         mtbf,
			RepairTime:   repair,
			NodeFraction: nodeFrc,
			Start:        warmup,
			Horizon:      warmup + cycles,
			MaxFaults:    nFaults,
			Seed:         seed,
		}.PlanTopo(imp)
		exitIf(err)
		fs = topo.NewFaultSet()
		fmt.Fprintf(console, "fault plan: %d events (mtbf %.0f, repair %d, node fraction %.2f)\n",
			plan.Len(), mtbf, repair, nodeFrc)
	}

	histCols := ""
	if o.hist {
		histCols = fmt.Sprintf(" %-8s %-8s %-8s", "p50", "p95", "p99")
	}
	if plan == nil {
		fmt.Fprintf(console, "%-8s %-8s %-10s %-10s %-8s %-10s %-8s%s\n",
			"ratio", "rate", "injected", "delivered", "expired", "avg-lat", "max-lat", histCols)
	} else {
		fmt.Fprintf(console, "%-8s %-8s %-10s %-10s %-6s %-8s %-6s %-10s %-9s %-9s %-9s%s\n",
			"ratio", "rate", "injected", "delivered", "lost", "expired", "drops", "avg-lat", "degraded", "reroutes", "detours", histCols)
	}
	// Lane factory for the sharded engine: each lane gets private instances
	// of the implicit topology and the algebraic router (plus, under faults,
	// its own fault-aware wrapper and sink), because none of them is
	// required to be safe for concurrent use.
	newLane := func() (netsim.Topology, netsim.Router, netsim.FaultSink, error) {
		lt, err := topo.NewImplicit(net.Super())
		if err != nil {
			return nil, nil, nil, err
		}
		lr, err := topo.NewAlgebraic(net.Super())
		if err != nil {
			return nil, nil, nil, err
		}
		if plan == nil {
			return lt, lr, nil, nil
		}
		lfs := topo.NewFaultSet()
		return lt, topo.NewFaultAware(lt, lr, lfs), lfs, nil
	}

	name := net.Name() + " (implicit)"
	multi := len(ratios)*len(rates) > 1
	for _, ratio := range ratios {
		for _, rate := range rates {
			var samples []map[string]float64
			var headStats any
			var headPct map[string]float64
			var headRouter *obs.RouterStats
			for rep := 0; rep < o.repeat; rep++ {
				pb, col := o.build(imp.Module)
				if shards > 0 {
					st, err := netsim.RunSharded(netsim.ShardedConfig{
						NewLane:         newLane,
						Space:           imp,
						OffModulePeriod: ratio,
						InjectionRate:   rate,
						WarmupCycles:    warmup,
						MeasureCycles:   cycles,
						Seed:            seed + int64(rep),
						Shards:          shards,
						Plan:            plan,
						Probe:           pb,
					})
					exitIf(err)
					pct := percentiles(o.hist, st.P50Latency, st.P95Latency, st.P99Latency)
					samples = append(samples, obs.Manifest{Stats: st, Percentiles: pct, Router: &st.Router}.Flatten())
					if rep > 0 {
						continue
					}
					headStats, headPct, headRouter = st, pct, &st.Router
					if plan == nil {
						fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-8d %-10.2f %-8d%s\n",
							ratio, rate, st.Injected, st.Delivered, st.Expired, st.AvgLatency, st.MaxLatency,
							quantileCols(o.hist, st.P50Latency, st.P95Latency, st.P99Latency))
					} else {
						fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-6d %-8d %-6d %-10.2f %-9d %-9d %-9d%s\n",
							ratio, rate, st.Injected, st.Delivered, st.Lost, st.Expired, st.HopLimitDrops,
							st.AvgLatency, st.DeliveredDegraded, st.RerouteEvents, st.MisroutedHops,
							quantileCols(o.hist, st.P50Latency, st.P95Latency, st.P99Latency))
					}
					exitIf(st.Router.WriteText(console))
					col.export(o, ratio, rate, multi)
					continue
				}
				cfg := netsim.ImplicitConfig{
					Topo:            imp,
					Router:          r,
					OffModulePeriod: ratio,
					InjectionRate:   rate,
					WarmupCycles:    warmup,
					MeasureCycles:   cycles,
					Seed:            seed + int64(rep),
					Probe:           pb,
				}
				if ratio > 1 {
					cfg.ModuleOf = imp.Module
				}
				if plan == nil {
					if o.live != nil {
						// The sampler calls this on the simulation goroutine,
						// between cycles — single-goroutine routers are safe.
						o.live.RouterSource(r.RouterStats)
					}
					st, err := netsim.RunImplicit(cfg)
					exitIf(err)
					pct := percentiles(o.hist, st.P50Latency, st.P95Latency, st.P99Latency)
					samples = append(samples, obs.Manifest{Stats: st, Percentiles: pct, Router: &st.Router}.Flatten())
					if rep > 0 {
						continue
					}
					headStats, headPct, headRouter = st, pct, &st.Router
					fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-8d %-10.2f %-8d%s\n",
						ratio, rate, st.Injected, st.Delivered, st.Expired, st.AvgLatency, st.MaxLatency,
						quantileCols(o.hist, st.P50Latency, st.P95Latency, st.P99Latency))
					exitIf(st.Router.WriteText(console))
					col.export(o, ratio, rate, multi)
					continue
				}
				// Fresh fault state per run: the scheduler re-applies the plan,
				// and the router's suffix cache starts clean.
				fs.Reset()
				fa := topo.NewFaultAware(imp, r, fs)
				cfg.Router = fa
				if o.live != nil {
					o.live.RouterSource(fa.RouterStats)
				}
				st, err := netsim.RunImplicitFaulty(cfg, netsim.ImplicitFaultConfig{Plan: plan, Faults: fs})
				exitIf(err)
				pct := percentiles(o.hist, st.P50Latency, st.P95Latency, st.P99Latency)
				samples = append(samples, obs.Manifest{Stats: st, Percentiles: pct, Router: &st.Router}.Flatten())
				if rep > 0 {
					continue
				}
				headStats, headPct, headRouter = st, pct, &st.Router
				fmt.Fprintf(console, "%-8d %-8.4f %-10d %-10d %-6d %-8d %-6d %-10.2f %-9d %-9d %-9d%s\n",
					ratio, rate, st.Injected, st.Delivered, st.Lost, st.Expired, st.HopLimitDrops,
					st.AvgLatency, st.DeliveredDegraded, st.RerouteEvents, st.MisroutedHops,
					quantileCols(o.hist, st.P50Latency, st.P95Latency, st.P99Latency))
				exitIf(st.Router.WriteText(console))
				col.export(o, ratio, rate, multi)
			}
			o.writeManifest(name, runConfig(ratio, rate, warmup, cycles, nFaults, shards), seed,
				headStats, headPct, headRouter, samples, ratio, rate, multi)
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		exitIf(err)
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		exitIf(err)
		out = append(out, v)
	}
	return out
}

// console receives the human-readable output (network headline, sweep
// tables, router telemetry). It is stdout except under -manifest -, where
// the manifest JSON owns stdout and the tables move to stderr.
var console io.Writer = os.Stdout

func exitIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
}
