// Command figures regenerates the data behind every table and figure in the
// paper's evaluation section. With no arguments it emits everything; pass
// one or more of fig1 fig2a fig2b fig3a fig3b fig4a fig4b fig5a fig5b
// optimality idegree to select specific artifacts.
//
// Usage:
//
//	figures [-limit N] [-parallel] [-workers N] [artifact ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/figures"
)

func main() {
	limit := flag.Int("limit", 1<<13, "largest instance measured exhaustively for Fig 3")
	par := flag.Bool("parallel", true, "use the parallel level-synchronous enumerator (identical output)")
	workers := flag.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
	flag.Parse()

	// Graph construction is deterministic for every worker count, so these
	// flags never change the emitted tables — only how fast they appear.
	if !*par {
		core.DefaultWorkers = 1
	} else if *workers > 0 {
		core.DefaultWorkers = *workers
	}

	gens := map[string]func() (*figures.Table, error){
		"fig1":           figures.Fig1,
		"fig2a":          func() (*figures.Table, error) { return figures.Fig2("a") },
		"fig2b":          func() (*figures.Table, error) { return figures.Fig2("b") },
		"fig3a":          func() (*figures.Table, error) { return figures.Fig3("a", *limit) },
		"fig3b":          func() (*figures.Table, error) { return figures.Fig3("b", *limit) },
		"fig4a":          func() (*figures.Table, error) { return figures.Fig4("a") },
		"fig4b":          func() (*figures.Table, error) { return figures.Fig4("b") },
		"fig5a":          func() (*figures.Table, error) { return figures.Fig5("a") },
		"fig5b":          func() (*figures.Table, error) { return figures.Fig5("b") },
		"optimality":     figures.Optimality,
		"optimality-ghc": figures.OptimalityGHC,
		"ablation":       figures.NucleusAblation,
		"section51":      func() (*figures.Table, error) { return figures.Section51(8, 1) },
		"avgdistance":    figures.AvgDistanceTable,
		"idegree":        figures.IDegreeTable,
	}
	order := []string{"fig1", "fig2a", "fig2b", "fig3a", "fig3b",
		"fig4a", "fig4b", "fig5a", "fig5b", "optimality", "optimality-ghc",
		"ablation", "section51", "avgdistance", "idegree"}

	selected := flag.Args()
	if len(selected) == 0 {
		selected = order
	}
	for _, name := range selected {
		gen, ok := gens[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown artifact %q (known: %v)\n", name, order)
			os.Exit(2)
		}
		tab, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}
